package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"taps/internal/experiments"
	"taps/internal/obs/declog"
	"taps/internal/obs/span"
)

// genBenchDeclog runs the deterministic bench-scale simulation with the
// flight recorder on and returns the log bytes plus the live span tree.
func genBenchDeclog(t *testing.T) ([]byte, *span.Tree) {
	t.Helper()
	scale, err := experiments.ScaleByName("bench")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.dlg")
	tree, _, err := spanRun(scale, path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, tree
}

// TestDeclogGoldenBench pins the decision log's binary encoding end to
// end: the bench-scale run is deterministic, so the log it writes must
// match the checked-in fixture byte for byte. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./cmd/tapsim -run TestDeclogGoldenBench
//
// after an intentional change to the workload, the scheduler's decisions,
// or the record encoding.
func TestDeclogGoldenBench(t *testing.T) {
	data, _ := genBenchDeclog(t)
	golden := filepath.Join("testdata", "declog_bench.bin")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(data))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("decision log deviates from golden %s: got %d bytes, want %d — the run "+
			"or the encoding changed; regenerate with UPDATE_GOLDEN=1 if intentional",
			golden, len(data), len(want))
	}
}

// TestReplayGoldenReconstructsGoldenTrace is the cross-golden acceptance
// check: replaying the checked-in decision log must reconstruct the exact
// span tree the live run recorded — so its trace_event export is
// byte-identical to testdata/trace_bench.json, which was produced by a
// live run. The log alone carries the whole causal history.
func TestReplayGoldenReconstructsGoldenTrace(t *testing.T) {
	recs, truncated, err := declog.ReadFile(filepath.Join("testdata", "declog_bench.bin"))
	if err != nil {
		t.Fatalf("read golden log (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if truncated {
		t.Fatal("golden log has a torn tail")
	}
	rp := declog.NewReplayer()
	rp.ApplyAll(recs)
	m := rp.Meta()
	if m == nil || m.Source != "tapsim" || len(m.LinkNames) == 0 {
		t.Fatalf("golden log lacks a usable meta record: %+v", m)
	}
	var buf bytes.Buffer
	if err := span.WriteTraceEvents(&buf, rp.Tree(), span.ExportOptions{
		LinkName: func(l int32) string {
			if int(l) < len(m.LinkNames) {
				return m.LinkNames[l]
			}
			return "?"
		},
	}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "trace_bench.json"))
	if err != nil {
		t.Fatalf("read golden trace: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("replayed trace deviates from the live-run golden: got %d bytes, want %d",
			buf.Len(), len(want))
	}
}

// TestReplayTreeMatchesLiveTree re-runs the bench simulation and requires
// the replayed span tree to be field-identical to the live recorder's —
// the structural form of the byte-level golden check above.
func TestReplayTreeMatchesLiveTree(t *testing.T) {
	data, live := genBenchDeclog(t)
	recs, _, err := declog.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rp := declog.NewReplayer()
	rp.ApplyAll(recs)
	if !reflect.DeepEqual(rp.Tree(), live) {
		t.Fatal("replayed span tree differs from the live recorder's snapshot")
	}
}

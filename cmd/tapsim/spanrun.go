package main

import (
	"fmt"
	"io"
	"strconv"

	"taps/internal/core"
	"taps/internal/experiments"
	"taps/internal/obs/declog"
	"taps/internal/obs/span"
	"taps/internal/sim"
	"taps/internal/simtime"
	"taps/internal/topology"
	"taps/internal/workload"
)

// spanRun executes one TAPS simulation at the scale's §V-A point with
// causal span recording (and transmission segments, so the trace carries
// real transmissions, not just grants). When declogPath is non-empty the
// run additionally writes the binary decision log there (the flight
// recording `tapsctl -replay` consumes). The run is fully deterministic
// for a given scale+seed — the golden-trace and golden-declog tests
// depend on that.
func spanRun(scale experiments.Scale, declogPath string) (*span.Tree, *topology.Graph, error) {
	g, r := topology.SingleRootedTree(scale.Tree)
	specs := workload.Generate(g, workload.Spec{
		Tasks:            scale.Tasks,
		MeanFlowsPerTask: scale.FlowsPerTask,
		ArrivalRate:      scale.ArrivalRate,
		Seed:             scale.Seed,
	})
	var dl *declog.Writer
	if declogPath != "" {
		var err error
		dl, err = declog.Create(declogPath, declog.Options{})
		if err != nil {
			return nil, nil, err
		}
		names := make([]string, g.NumLinks())
		for i := range names {
			names[i] = g.Link(topology.LinkID(i)).Name
		}
		dl.Meta(declog.Meta{Source: "tapsim", LinkNames: names})
	}
	rec := span.NewRecorder()
	sched := core.New(core.DefaultConfig())
	sched.SetSpanRecorder(rec)
	sched.SetDecisionLog(dl)
	eng := sim.New(g, topology.NewCachedRouting(r), sched, specs, sim.Config{
		RecordSegments: true, Spans: rec, DecLog: dl, MaxTime: simtime.Time(4e12),
	})
	if _, err := eng.Run(); err != nil {
		dl.Close()
		return nil, nil, err
	}
	if err := dl.Close(); err != nil {
		return nil, nil, err
	}
	return rec.Snapshot(), g, nil
}

// writeTrace exports the tree as Chrome trace_event JSON with topology
// link names on the link tracks.
func writeTrace(w io.Writer, tree *span.Tree, g *topology.Graph) error {
	return span.WriteTraceEvents(w, tree, span.ExportOptions{
		LinkName: func(l int32) string { return g.Link(topology.LinkID(l)).Name },
	})
}

// printWhy renders the causal explanation of one task's fate. The special
// argument "rejected" picks the first discarded task of the run — a quick
// way to see an attribution chain without knowing task IDs up front.
func printWhy(out io.Writer, tree *span.Tree, g *topology.Graph, arg string) error {
	linkName := func(l int32) string { return g.Link(topology.LinkID(l)).Name }
	task := span.NoTask
	if arg == "rejected" {
		// Prefer a discarded task whose chain names holders (occupancy by
		// other tasks) over one doomed purely by its own infeasible flows.
		fallback := span.NoTask
		for i := range tree.Tasks {
			ts := &tree.Tasks[i]
			if ts.Outcome != span.OutcomeRejected && ts.Outcome != span.OutcomePreempted {
				continue
			}
			if fallback == span.NoTask {
				fallback = ts.Task
			}
			for _, blk := range ts.Blocks {
				if len(blk.Holders) > 0 {
					task = ts.Task
				}
			}
			if task != span.NoTask {
				break
			}
		}
		if task == span.NoTask {
			task = fallback
		}
		if task == span.NoTask {
			return fmt.Errorf("-why rejected: the run discarded no task")
		}
	} else {
		id, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return fmt.Errorf("-why wants a task ID or \"rejected\": %w", err)
		}
		task = id
	}
	_, err := io.WriteString(out, span.WhyText(tree, task, linkName))
	return err
}

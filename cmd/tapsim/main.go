// Command tapsim regenerates the paper's simulation figures (Figs. 1-3 and
// 6-12) as text tables.
//
// Usage:
//
//	tapsim -fig 6 -scale laptop
//	tapsim -fig all -scale bench
//	tapsim -fig 9 -schedulers TAPS,PDQ,FairSharing -seed 7
//
// Scales: "laptop" (default, minutes for all figures), "bench" (seconds),
// "paper" (§V-A full scale: 36,000-host tree; expect very long runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"taps/internal/analysis"
	"taps/internal/experiments"
	"taps/internal/metrics"
	"taps/internal/obs"
	"taps/internal/sim"
	"taps/internal/simtime"
	"taps/internal/topology"
	"taps/internal/workload"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "figure to regenerate: 1,2,3,6,7,8,9,10,11,12,14, bcube, ficonn, mix, overhead (extensions), report, or all")
		scaleFlag = flag.String("scale", "laptop", "experiment scale: paper, laptop, bench")
		schedFlag = flag.String("schedulers", "", "comma-separated scheduler subset (default: all six)")
		seedFlag  = flag.Int64("seed", 0, "override the workload seed (0 keeps the scale default)")
		seedsFlag = flag.Int("seeds", 0, "average every sweep point over this many consecutive seeds")
		outFlag   = flag.String("o", "", "write output to this file instead of stdout")
		formatF   = flag.String("format", "table", "sweep output format: table, csv, json, chart")
		obsFlag   = flag.Bool("obs", false, "record controller decisions and runtime metrics; print a summary at exit")
		eventsF   = flag.String("events", "", "stream decision events as JSONL to this file (implies -obs)")
		verboseF  = flag.Bool("v", false, "stream decision events to stderr as they happen (implies -obs)")
		traceF    = flag.String("trace", "", "run one TAPS simulation at the scale's §V-A point with causal span tracing and write Chrome trace_event JSON to this file (skips -fig)")
		whyF      = flag.String("why", "", "run one TAPS simulation at the scale's §V-A point and explain this task's fate (a task ID, or \"rejected\" for the first discarded task; skips -fig)")
		declogF   = flag.String("declog", "", "run one TAPS simulation at the scale's §V-A point and write the binary decision log (flight recording) to this file, for tapsctl -replay (skips -fig)")
	)
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	var rec *obs.Recorder
	if *obsFlag || *eventsF != "" || *verboseF {
		rec = obs.NewRecorder(obs.Options{})
		if *eventsF != "" {
			f, err := os.Create(*eventsF)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			rec.AddSink(obs.JSONLSink(f))
		}
		if *verboseF {
			rec.AddSink(func(ev obs.Event) { fmt.Fprintln(os.Stderr, obs.FormatEvent(ev)) })
		}
		experiments.Observe(rec)
	}

	scale, err := experiments.ScaleByName(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if *seedFlag != 0 {
		scale.Seed = *seedFlag
	}
	if *seedsFlag > 0 {
		scale.Seeds = *seedsFlag
	}
	schedulers := experiments.AllSchedulers()
	if *schedFlag != "" {
		schedulers = strings.Split(*schedFlag, ",")
		for _, s := range schedulers {
			experiments.NewScheduler(s) // panics early on typos
		}
	}

	if *traceF != "" || *whyF != "" || *declogF != "" {
		tree, g, err := spanRun(scale, *declogF)
		if err != nil {
			fatal(err)
		}
		if *declogF != "" {
			fmt.Fprintf(out, "# declog: %d tasks, %d flows, %d planning passes -> %s\n",
				len(tree.Tasks), len(tree.Flows), len(tree.Replans), *declogF)
		}
		if *traceF != "" {
			f, err := os.Create(*traceF)
			if err != nil {
				fatal(err)
			}
			if err := writeTrace(f, tree, g); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(out, "# trace: %d tasks, %d flows, %d planning passes -> %s\n",
				len(tree.Tasks), len(tree.Flows), len(tree.Replans), *traceF)
		}
		if *whyF != "" {
			if err := printWhy(out, tree, g, *whyF); err != nil {
				fatal(err)
			}
		}
		return
	}

	figs := strings.Split(*figFlag, ",")
	if *figFlag == "all" {
		figs = []string{"1", "2", "3", "6", "7", "8", "9", "10", "11", "12", "14", "bcube", "ficonn", "mix", "overhead"}
	}
	for _, fig := range figs {
		start := time.Now()
		if err := runFigure(out, fig, scale, schedulers, *formatF, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "# fig %s done in %v (scale=%s, seed=%d)\n\n",
			fig, time.Since(start).Round(time.Millisecond), scale.Name, scale.Seed)
	}
	if rec != nil {
		fmt.Fprint(out, rec.SummaryText(nil))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tapsim:", err)
	os.Exit(1)
}

func runFigure(out io.Writer, fig string, scale experiments.Scale, schedulers []string, format string, rec *obs.Recorder) error {
	switch fig {
	case "1", "2":
		var rs []experiments.MotivationResult
		var err error
		if fig == "1" {
			rs, err = experiments.Fig1(schedulers)
		} else {
			rs, err = experiments.Fig2(schedulers)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "## Fig. %s motivation example\n", fig)
		fmt.Fprintf(out, "%-14s %-14s %-14s\n", "scheduler", "flows_on_time", "tasks_completed")
		for _, r := range rs {
			fmt.Fprintf(out, "%-14s %-14d %-14d\n", r.Scheduler, r.FlowsOnTime, r.TasksCompleted)
		}
	case "3":
		rs, err := experiments.Fig3()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "## Fig. 3 global scheduling example")
		for _, name := range []string{"PDQ", "TAPS"} {
			fmt.Fprintf(out, "%-14s flows_on_time=%d\n", name, rs[name].FlowsOnTime)
		}
	case "6", "7", "8", "9", "10", "11", "12", "bcube", "ficonn":
		res, err := sweepFigure(fig, scale, schedulers)
		if err != nil {
			return err
		}
		if err := writeSweep(out, fig, res, format, scale.Seeds); err != nil {
			return err
		}
	case "report":
		return writeReports(out, scale, schedulers, rec)
	case "mix":
		res, err := experiments.ExtMix(scale, schedulers)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.Table(schedulers))
	case "14":
		res, err := experiments.Fig14(experiments.StressTestbedSpec())
		if err != nil {
			return err
		}
		fmt.Fprint(out, metrics.Chart("Fig. 14 effective application throughput (%)", res.Series, 64, 16))
		fmt.Fprintf(out, "TAPS tasks %d/%d (rejected %d), wasted %.1f MB; FairSharing tasks %d/%d, wasted %.1f MB\n",
			res.TAPS.TasksCompleted, res.TAPS.Tasks, res.TAPS.TasksRejected, res.TAPS.WastedBytes/1e6,
			res.FairSharing.TasksCompleted, res.FairSharing.Tasks, res.FairSharing.WastedBytes/1e6)
	case "overhead":
		points, err := experiments.ExtControlOverhead([]int{5, 10, 20, 40}, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.OverheadTable(points))
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// writeReports runs the default §V-A point for every scheduler with
// segment recording on and prints link-utilization / completion-time
// analytics (internal/analysis).
func writeReports(out io.Writer, scale experiments.Scale, schedulers []string, rec *obs.Recorder) error {
	g, r := topology.SingleRootedTree(scale.Tree)
	cr := topology.NewCachedRouting(r)
	specs := workload.Generate(g, workload.Spec{
		Tasks:            scale.Tasks,
		MeanFlowsPerTask: scale.FlowsPerTask,
		ArrivalRate:      scale.ArrivalRate,
		Seed:             scale.Seed,
	})
	for _, name := range schedulers {
		eng := sim.New(g, cr, experiments.NewScheduler(name), specs, sim.Config{
			RecordSegments: true, MaxTime: simtime.Time(4e12), Obs: rec,
		})
		res, err := eng.Run()
		if err != nil {
			return fmt.Errorf("report %s: %w", name, err)
		}
		report, err := analysis.Report(g, res, 8)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, report)
		tct := analysis.TCT(res)
		fmt.Fprintf(out, "TCT: n=%d mean=%.3fms p95=%.3fms\n\n",
			tct.Count, simtime.ToMillis(tct.Mean), simtime.ToMillis(tct.P95))
	}
	return nil
}

func sweepFigure(fig string, scale experiments.Scale, schedulers []string) (*experiments.SweepResult, error) {
	switch fig {
	case "6":
		return experiments.Fig6(scale, schedulers)
	case "7":
		return experiments.Fig7(scale, schedulers)
	case "8":
		return experiments.Fig8(scale, schedulers)
	case "9":
		return experiments.Fig9(scale, schedulers)
	case "10":
		return experiments.Fig10(scale, schedulers)
	case "11":
		return experiments.Fig11(scale, schedulers)
	case "bcube":
		return experiments.ExtBCube(scale, schedulers)
	case "ficonn":
		return experiments.ExtFiConn(scale, schedulers)
	}
	return experiments.Fig12(scale, schedulers)
}

// figPanels selects which series groups a figure plots, with the aligned
// stddev group for each panel.
func figPanels(fig string, res *experiments.SweepResult) (titles []string, groups, stds [][]metrics.Series) {
	switch fig {
	case "6", "9":
		return []string{
				fmt.Sprintf("Fig. %s(a) application throughput (task-size ratio)", fig),
				fmt.Sprintf("Fig. %s(b) task completion ratio", fig),
			},
			[][]metrics.Series{res.AppThroughput, res.TaskCompletion},
			[][]metrics.Series{res.AppThroughputStd, res.TaskCompletionStd}
	case "8":
		return []string{"Fig. 8 wasted bandwidth ratio"},
			[][]metrics.Series{res.WastedBandwidth},
			[][]metrics.Series{res.WastedBandwidthStd}
	case "10":
		return []string{"Fig. 10 flow completion ratio (single-flow tasks)"},
			[][]metrics.Series{res.FlowCompletion},
			[][]metrics.Series{res.FlowCompletionStd}
	case "bcube":
		return []string{"Extension: BCube task completion ratio"},
			[][]metrics.Series{res.TaskCompletion},
			[][]metrics.Series{res.TaskCompletionStd}
	case "ficonn":
		return []string{"Extension: FiConn task completion ratio"},
			[][]metrics.Series{res.TaskCompletion},
			[][]metrics.Series{res.TaskCompletionStd}
	}
	return []string{fmt.Sprintf("Fig. %s task completion ratio", fig)},
		[][]metrics.Series{res.TaskCompletion},
		[][]metrics.Series{res.TaskCompletionStd}
}

func writeSweep(out io.Writer, fig string, res *experiments.SweepResult, format string, seeds int) error {
	titles, groups, stds := figPanels(fig, res)
	for i, group := range groups {
		switch format {
		case "table", "":
			if seeds > 1 {
				fmt.Fprint(out, metrics.TableWithError(titles[i], res.XLabel, group, stds[i]))
			} else {
				fmt.Fprint(out, metrics.Table(titles[i], res.XLabel, group))
			}
		case "csv":
			fmt.Fprintf(out, "# %s\n", titles[i])
			if err := metrics.WriteCSV(out, res.XLabel, group); err != nil {
				return err
			}
		case "json":
			if err := metrics.WriteJSON(out, res.XLabel, group); err != nil {
				return err
			}
		case "chart":
			fmt.Fprint(out, metrics.Chart(titles[i], group, 64, 16))
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taps/internal/experiments"
	"taps/internal/obs/span"
)

// TestTraceGoldenBench pins `tapsim -trace` end to end: the bench-scale
// span run is fully deterministic, so its trace_event export must match
// the checked-in golden byte for byte. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./cmd/tapsim -run TestTraceGoldenBench
//
// after an intentional change to the workload, the scheduler's decisions,
// or the export format.
func TestTraceGoldenBench(t *testing.T) {
	scale, err := experiments.ScaleByName("bench")
	if err != nil {
		t.Fatal(err)
	}
	tree, g, err := spanRun(scale, "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeTrace(&buf, tree, g); err != nil {
		t.Fatal(err)
	}

	// Structural validity before comparing: parseable trace_event JSON
	// with the ms display unit and a non-trivial event count.
	var tf struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" || len(tf.TraceEvents) < 100 {
		t.Fatalf("trace file = unit %q, %d events", tf.DisplayTimeUnit, len(tf.TraceEvents))
	}

	golden := filepath.Join("testdata", "trace_bench.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace deviates from golden %s: got %d bytes, want %d — the run "+
			"or the export format changed; regenerate with UPDATE_GOLDEN=1 if intentional",
			golden, buf.Len(), len(want))
	}
}

// TestWhyRejectedNamesHolders pins the acceptance contract of -why: the
// bench-scale run rejects tasks, and the explanation of a discarded task
// names at least one blocking link and the task(s) occupying it.
func TestWhyRejectedNamesHolders(t *testing.T) {
	scale, err := experiments.ScaleByName("bench")
	if err != nil {
		t.Fatal(err)
	}
	tree, g, err := spanRun(scale, "")
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for i := range tree.Tasks {
		if tree.Tasks[i].Outcome == span.OutcomeRejected {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("bench-scale run rejected no task; -why has nothing to explain")
	}
	var buf bytes.Buffer
	if err := printWhy(&buf, tree, g, "rejected"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "REJECTED") && !strings.Contains(text, "PREEMPTED") {
		t.Fatalf("-why rejected lacks a terminal outcome:\n%s", text)
	}
	if !strings.Contains(text, "blocking links") || !strings.Contains(text, "held by") {
		t.Fatalf("-why rejected names no blocking link/holder:\n%s", text)
	}
}

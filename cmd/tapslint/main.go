// Command tapslint runs the repository's determinism and simulated-time
// lint pass (internal/lint) over module packages.
//
//	tapslint [-list] [packages...]
//
// Packages are directory patterns relative to the working directory
// (./internal/core, ./..., ./internal/...); the default is ./... from the
// module root, which — like the go tool — skips testdata directories, so
// the deliberate-violation fixtures under internal/lint/testdata only load
// when named explicitly.
//
// Diagnostics are printed for every package before exiting (no fail-fast):
// one clean run shows everything there is to fix. Exit status: 0 with no
// output when the tree is clean, 1 when any diagnostic was reported, 2
// when packages failed to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"taps/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tapslint [-list] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapslint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapslint:", err)
		os.Exit(2)
	}

	loadFailed := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "tapslint: %s: %v\n", pkg.Path, e)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(diags) > 0:
		os.Exit(1)
	}
}

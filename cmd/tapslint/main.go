// Command tapslint runs the repository's determinism, concurrency, and
// hot-path lint pass (internal/lint) over module packages.
//
//	tapslint [-list] [-json] [-v] [-write-baseline] [packages...]
//
// Packages are directory patterns relative to the working directory
// (./internal/core, ./..., ./internal/...); the default is ./... from the
// module root, which — like the go tool — skips testdata directories, so
// the deliberate-violation fixtures under internal/lint/testdata only load
// when named explicitly.
//
// Findings ratchet against lint.baseline.json at the module root: a
// finding matching a baseline entry (same check, file, and message) is
// grandfathered — reported as baselined but not fatal — while any finding
// absent from the baseline fails the run. Baseline entries that no longer
// match anything are listed as stale so they can be burned down; stale
// entries alone do not fail the run, but the baseline-drift CI check does
// catch them via -write-baseline + git diff. -write-baseline rewrites the
// file from the current findings, preserving rationales of surviving
// entries.
//
// Diagnostics are printed for every package before exiting (no fail-fast):
// one clean run shows everything there is to fix. Exit status: 0 when
// every finding is baselined (or none exist), 1 when any new finding was
// reported, 2 when packages failed to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"taps/internal/lint"
)

const baselineName = "lint.baseline.json"

// baselineEntry grandfathers one finding. Line numbers are deliberately
// not part of the key: edits above a finding must not un-baseline it.
type baselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-root-relative, slash-separated
	Message string `json:"message"`
	// Rationale says why the finding is parked rather than fixed; the
	// review bar for adding an entry is the same as for //taps:allow.
	Rationale string `json:"rationale,omitempty"`
}

type baselineFile struct {
	// Comment documents the ratchet for people opening the file raw.
	Comment  string          `json:"comment,omitempty"`
	Findings []baselineEntry `json:"findings"`
}

func baselineKey(check, file, message string) string {
	return check + "\x00" + file + "\x00" + message
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Check     string `json:"check"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

type jsonReport struct {
	Findings []jsonFinding   `json:"findings"`
	Stale    []baselineEntry `json:"stale,omitempty"`
	Timings  []jsonTiming    `json:"timings,omitempty"`
}

type jsonTiming struct {
	Analyzer string  `json:"analyzer"`
	WallMS   float64 `json:"wall_ms"`
}

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	verbose := flag.Bool("v", false, "print per-analyzer wall time to stderr")
	writeBaseline := flag.Bool("write-baseline", false,
		"rewrite "+baselineName+" from the current findings and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tapslint [-list] [-json] [-v] [-write-baseline] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapslint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapslint:", err)
		os.Exit(2)
	}

	loadFailed := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "tapslint: %s: %v\n", pkg.Path, e)
		}
	}

	diags, timings := lint.RunWithTimings(pkgs, analyzers)
	if *verbose {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "tapslint: %-14s %8.1fms\n", t.Name,
				float64(t.Wall.Microseconds())/1000)
		}
	}

	baselinePath := filepath.Join(loader.ModRoot, baselineName)
	base, err := readBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapslint:", err)
		os.Exit(2)
	}

	// relName maps a diagnostic's absolute filename to the module-root-
	// relative slash form used both for display and as the baseline key.
	relName := func(abs string) string {
		if rel, err := filepath.Rel(loader.ModRoot, abs); err == nil && !filepath.IsAbs(rel) {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(abs)
	}

	known := make(map[string]*baselineEntry, len(base.Findings))
	used := make(map[string]bool, len(base.Findings))
	for i := range base.Findings {
		e := &base.Findings[i]
		known[baselineKey(e.Check, e.File, e.Message)] = e
	}

	findings := []jsonFinding{}
	newCount := 0
	for _, d := range diags {
		file := relName(d.Pos.Filename)
		key := baselineKey(d.Check, file, d.Message)
		_, grandfathered := known[key]
		if grandfathered {
			used[key] = true
		} else {
			newCount++
		}
		findings = append(findings, jsonFinding{
			File: file, Line: d.Pos.Line, Column: d.Pos.Column,
			Check: d.Check, Message: d.Message, Baselined: grandfathered,
		})
	}
	var stale []baselineEntry
	for _, e := range base.Findings {
		if !used[baselineKey(e.Check, e.File, e.Message)] {
			stale = append(stale, e)
		}
	}

	if *writeBaseline {
		if err := writeBaselineFile(baselinePath, base, findings); err != nil {
			fmt.Fprintln(os.Stderr, "tapslint:", err)
			os.Exit(2)
		}
		if loadFailed {
			os.Exit(2)
		}
		return
	}

	if *asJSON {
		rep := jsonReport{Findings: findings, Stale: stale}
		for _, t := range timings {
			rep.Timings = append(rep.Timings, jsonTiming{
				Analyzer: t.Name, WallMS: float64(t.Wall.Microseconds()) / 1000})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "tapslint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			tag := ""
			if f.Baselined {
				tag = " (baselined)"
			}
			fmt.Printf("%s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Column, f.Check, f.Message, tag)
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "tapslint: stale baseline entry: %s: %s: %s\n",
				e.Check, e.File, e.Message)
		}
	}

	switch {
	case loadFailed:
		os.Exit(2)
	case newCount > 0:
		os.Exit(1)
	}
}

// readBaseline loads the ratchet file; a missing file is an empty
// baseline, not an error, so fresh checkouts and subsets lint cleanly.
func readBaseline(path string) (baselineFile, error) {
	var base baselineFile
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return base, nil
		}
		return base, fmt.Errorf("read baseline: %w", err)
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("parse %s: %w", path, err)
	}
	return base, nil
}

// writeBaselineFile rewrites the ratchet from the current findings.
// Entries that still fire keep their rationale; brand-new entries get a
// placeholder that review is expected to replace.
func writeBaselineFile(path string, old baselineFile, findings []jsonFinding) error {
	rationales := make(map[string]string, len(old.Findings))
	for _, e := range old.Findings {
		rationales[baselineKey(e.Check, e.File, e.Message)] = e.Rationale
	}
	out := baselineFile{
		Comment: "tapslint ratchet: findings listed here are grandfathered until burned down; " +
			"new findings fail the run. Every entry needs a rationale.",
		Findings: []baselineEntry{},
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		key := baselineKey(f.Check, f.File, f.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		r := rationales[key]
		if r == "" {
			r = "TODO: justify or fix"
		}
		out.Findings = append(out.Findings, baselineEntry{
			Check: f.Check, File: f.File, Message: f.Message, Rationale: r,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"taps/internal/obs/declog"
	"taps/internal/obs/span"
	"taps/internal/simtime"
)

// runReplay is tapsctl's offline time-travel mode: it folds a decision
// log (written by tapsctl -declog, tapsim -declog, or fetched from a live
// controller's GET /declog) into the reconstructed span forest and plan
// state — no controller, no agents, no topology file needed; the log's
// Meta record carries the link names. untilUs > 0 materializes the world
// as of that virtual instant instead of the end of the log.
func runReplay(out io.Writer, path string, untilUs int64, whyArg, traceTo string) error {
	recs, truncated, err := declog.ReadFile(path)
	if err != nil {
		return err
	}
	if truncated {
		fmt.Fprintf(os.Stderr, "tapsctl: %s: torn tail truncated (crash mid-write); replaying the valid prefix\n", path)
	}
	rp := declog.NewReplayer()
	if untilUs > 0 {
		rp.SetUntil(simtime.Time(untilUs))
	}
	rp.ApplyAll(recs)
	tree := rp.Tree()
	linkName := replayLinkNamer(rp.Meta())

	if traceTo != "" {
		f, err := os.Create(traceTo)
		if err != nil {
			return err
		}
		if err := span.WriteTraceEvents(f, tree, span.ExportOptions{LinkName: linkName}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "# trace: %d tasks, %d flows, %d planning passes -> %s\n",
			len(tree.Tasks), len(tree.Flows), len(tree.Replans), traceTo)
	}
	if whyArg != "" {
		task, err := pickWhyTask(tree, whyArg)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, span.WhyText(tree, task, linkName))
		return err
	}
	if traceTo == "" {
		writeReplaySummary(out, path, rp, tree, untilUs)
	}
	return nil
}

func replayLinkNamer(m *declog.Meta) func(int32) string {
	return func(l int32) string {
		if m != nil && int(l) >= 0 && int(l) < len(m.LinkNames) {
			return m.LinkNames[l]
		}
		return fmt.Sprintf("link %d", l)
	}
}

// pickWhyTask resolves the -why argument: a task ID, or "rejected" for
// the first discarded task of the log (preferring one whose attribution
// chain names holders).
func pickWhyTask(tree *span.Tree, arg string) (int64, error) {
	if arg != "rejected" {
		id, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("-why wants a task ID or \"rejected\": %w", err)
		}
		return id, nil
	}
	fallback := span.NoTask
	for i := range tree.Tasks {
		ts := &tree.Tasks[i]
		if ts.Outcome != span.OutcomeRejected && ts.Outcome != span.OutcomePreempted {
			continue
		}
		if fallback == span.NoTask {
			fallback = ts.Task
		}
		for _, blk := range ts.Blocks {
			if len(blk.Holders) > 0 {
				return ts.Task, nil
			}
		}
	}
	if fallback == span.NoTask {
		return 0, fmt.Errorf("-why rejected: the log holds no discarded task")
	}
	return fallback, nil
}

// writeReplaySummary prints the reconstructed world: decision totals from
// the span forest plus the in-flight plan state at the replay instant.
func writeReplaySummary(out io.Writer, path string, rp *declog.Replayer, tree *span.Tree, untilUs int64) {
	source := "?"
	if m := rp.Meta(); m != nil {
		source = m.Source
	}
	at := "end of log"
	if untilUs > 0 {
		at = fmt.Sprintf("t=%.3fms", simtime.ToMillis(simtime.Time(untilUs)))
	}
	fmt.Fprintf(out, "## replay of %s (source %s, %d records applied, %s)\n",
		path, source, rp.Applied(), at)
	var completed, rejected, preempted, killed, running int
	for i := range tree.Tasks {
		switch tree.Tasks[i].Outcome {
		case span.OutcomeCompleted:
			completed++
		case span.OutcomeRejected:
			rejected++
		case span.OutcomePreempted:
			preempted++
		case span.OutcomeKilled:
			killed++
		case span.OutcomeRunning:
			running++
		}
	}
	fmt.Fprintf(out, "tasks: %d seen — %d completed, %d rejected, %d preempted, %d killed, %d in flight\n",
		len(tree.Tasks), completed, rejected, preempted, killed, running)
	fmt.Fprintf(out, "flows: %d seen, %d planning passes, %d link failures\n",
		len(tree.Flows), len(tree.Replans), len(tree.LinkDowns))

	var accepted []int64
	for t := range rp.TaskFlows() {
		if rp.Accepted(t) {
			accepted = append(accepted, t)
		}
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	pending := 0
	for _, f := range rp.Flows() {
		if !f.Done {
			pending++
		}
	}
	fmt.Fprintf(out, "plan state: %d tasks accepted %v, %d pending flows, %d links occupied\n",
		len(accepted), accepted, pending, len(rp.Occupancy()))
}

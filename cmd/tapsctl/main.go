// Command tapsctl runs the networked TAPS controller (internal/netctl)
// over a configured topology and serves host agents over TCP.
//
// Usage:
//
//	tapsctl -listen 127.0.0.1:7474 -topo testbed
//	tapsctl -listen :7474 -topo fattree -k 8 -speedup 10
//	tapsctl -declog taps.dlg -listen :7474        # flight recorder on
//	tapsctl -replay taps.dlg                      # time travel: world at end of log
//	tapsctl -replay taps.dlg -until 250000 -why 7 # why was task 7 discarded, as of t=250ms
//
// Agents connect with cmd/tapsagent (or the netctl.Agent API), submit
// tasks, and receive pre-allocated transmission slices. With -declog the
// controller writes every decision to an append-only log before agents
// hear of it, and a restarted controller pointed at the same log recovers
// its plan state without re-contacting anyone. -replay works offline on
// any such log (including one fetched from a live GET /declog).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"taps/internal/netctl"
	"taps/internal/obs"
	"taps/internal/topology"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7474", "address to listen on")
		topo    = flag.String("topo", "testbed", "topology: testbed, tree, fattree, bcube, ficonn")
		pods    = flag.Int("pods", 4, "tree: pods")
		racks   = flag.Int("racks", 4, "tree: racks per pod")
		hosts   = flag.Int("hosts", 10, "tree: hosts per rack")
		k       = flag.Int("k", 4, "fattree: k / bcube: k")
		n       = flag.Int("n", 4, "bcube: n")
		speedup = flag.Float64("speedup", 1, "virtual µs per real µs")
		paths   = flag.Int("paths", 16, "candidate path cap")
		incrF   = flag.Bool("incremental", false, "delta replanning: reuse unchanged plans across passes, fall back to a full pass when the dirty set is large")
		httpAt  = flag.String("http", "", "serve GET /status, /metrics, /events and /healthz on this address (empty: off)")
		eventsF = flag.String("events", "", "stream decision events as JSONL to this file")
		declogF = flag.String("declog", "", "write-ahead decision log file (reopening an existing log recovers controller state)")
		replayF = flag.String("replay", "", "offline mode: replay this decision log instead of serving")
		untilF  = flag.Int64("until", 0, "replay: materialize state as of this virtual time in µs (0: end of log)")
		whyF    = flag.String("why", "", "replay: explain this task's fate (task ID or \"rejected\")")
		traceF  = flag.String("trace", "", "replay: write the reconstructed Chrome trace_event JSON here")
	)
	flag.Parse()

	if *replayF != "" {
		if err := runReplay(os.Stdout, *replayF, *untilF, *whyF, *traceF); err != nil {
			fmt.Fprintln(os.Stderr, "tapsctl:", err)
			os.Exit(1)
		}
		return
	}

	g, r, err := buildTopology(*topo, *pods, *racks, *hosts, *k, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapsctl:", err)
		os.Exit(1)
	}
	ctl := netctl.NewController(g, r, netctl.ControllerConfig{
		Speedup:     *speedup,
		MaxPaths:    *paths,
		Incremental: *incrF,
		Logf:        log.Printf,
	})
	var eventsFile *os.File
	if *eventsF != "" {
		eventsFile, err = os.Create(*eventsF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapsctl:", err)
			os.Exit(1)
		}
		ctl.Recorder().AddSink(obs.JSONLSink(eventsFile))
	}
	if *declogF != "" {
		if err := ctl.EnableDecisionLog(*declogF); err != nil {
			fmt.Fprintln(os.Stderr, "tapsctl:", err)
			os.Exit(1)
		}
	}
	// shutdown flushes everything durable: Close syncs and closes the
	// decision log, and the events file is closed only after the
	// controller (its last writer) is down. Called on both exit paths, so
	// the SIGINT path cannot drop a buffered tail.
	shutdown := func() {
		if err := ctl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tapsctl:", err)
		}
		if eventsFile != nil {
			if err := eventsFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tapsctl:", err)
			}
		}
	}
	// On interrupt, print the decision/latency digest before exiting.
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		fmt.Fprint(os.Stderr, ctl.Recorder().SummaryText(nil))
		fmt.Fprint(os.Stderr, ctl.LoadSummaryText())
		shutdown()
		os.Exit(0)
	}()
	if *httpAt != "" {
		go func() {
			log.Printf("tapsctl: monitoring on http://%s/status", *httpAt)
			if err := http.ListenAndServe(*httpAt, ctl.HTTPHandler()); err != nil {
				log.Fatal(err)
			}
		}()
	}
	log.Printf("tapsctl: %s topology, %d hosts, listening on %s (speedup %gx)",
		*topo, len(g.Hosts()), *listen, *speedup)
	err = ctl.Serve(*listen)
	shutdown()
	if err != nil {
		log.Fatal(err)
	}
}

func buildTopology(topo string, pods, racks, hosts, k, n int) (*topology.Graph, topology.Routing, error) {
	switch topo {
	case "testbed":
		g, r := topology.PartialFatTree(topology.PaperTestbed())
		return g, r, nil
	case "tree":
		g, r := topology.SingleRootedTree(topology.SingleRootedTreeSpec{
			Pods: pods, RacksPerPod: racks, HostsPerRack: hosts,
			LinkCapacity: topology.Gbps(1),
		})
		return g, r, nil
	case "fattree":
		g, r := topology.FatTree(topology.FatTreeSpec{K: k, LinkCapacity: topology.Gbps(1)})
		return g, topology.NewCachedRouting(r), nil
	case "bcube":
		g, r := topology.BCube(topology.BCubeSpec{N: n, K: k, LinkCapacity: topology.Gbps(1)})
		return g, topology.NewCachedRouting(r), nil
	case "ficonn":
		g, r := topology.FiConn(topology.FiConnSpec{N: n, K: k, LinkCapacity: topology.Gbps(1)})
		return g, topology.NewCachedRouting(r), nil
	}
	return nil, nil, fmt.Errorf("unknown topology %q", topo)
}

// Command tapsctl runs the networked TAPS controller (internal/netctl)
// over a configured topology and serves host agents over TCP.
//
// Usage:
//
//	tapsctl -listen 127.0.0.1:7474 -topo testbed
//	tapsctl -listen :7474 -topo fattree -k 8 -speedup 10
//
// Agents connect with cmd/tapsagent (or the netctl.Agent API), submit
// tasks, and receive pre-allocated transmission slices.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"taps/internal/netctl"
	"taps/internal/obs"
	"taps/internal/topology"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7474", "address to listen on")
		topo    = flag.String("topo", "testbed", "topology: testbed, tree, fattree, bcube, ficonn")
		pods    = flag.Int("pods", 4, "tree: pods")
		racks   = flag.Int("racks", 4, "tree: racks per pod")
		hosts   = flag.Int("hosts", 10, "tree: hosts per rack")
		k       = flag.Int("k", 4, "fattree: k / bcube: k")
		n       = flag.Int("n", 4, "bcube: n")
		speedup = flag.Float64("speedup", 1, "virtual µs per real µs")
		paths   = flag.Int("paths", 16, "candidate path cap")
		httpAt  = flag.String("http", "", "serve GET /status, /metrics, /events and /healthz on this address (empty: off)")
		eventsF = flag.String("events", "", "stream decision events as JSONL to this file")
	)
	flag.Parse()

	g, r, err := buildTopology(*topo, *pods, *racks, *hosts, *k, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapsctl:", err)
		os.Exit(1)
	}
	ctl := netctl.NewController(g, r, netctl.ControllerConfig{
		Speedup:  *speedup,
		MaxPaths: *paths,
		Logf:     log.Printf,
	})
	if *eventsF != "" {
		f, err := os.Create(*eventsF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapsctl:", err)
			os.Exit(1)
		}
		defer f.Close()
		ctl.Recorder().AddSink(obs.JSONLSink(f))
	}
	// On interrupt, print the decision/latency digest before exiting.
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		fmt.Fprint(os.Stderr, ctl.Recorder().SummaryText(nil))
		ctl.Close()
		os.Exit(0)
	}()
	if *httpAt != "" {
		go func() {
			log.Printf("tapsctl: monitoring on http://%s/status", *httpAt)
			if err := http.ListenAndServe(*httpAt, ctl.HTTPHandler()); err != nil {
				log.Fatal(err)
			}
		}()
	}
	log.Printf("tapsctl: %s topology, %d hosts, listening on %s (speedup %gx)",
		*topo, len(g.Hosts()), *listen, *speedup)
	if err := ctl.Serve(*listen); err != nil {
		log.Fatal(err)
	}
}

func buildTopology(topo string, pods, racks, hosts, k, n int) (*topology.Graph, topology.Routing, error) {
	switch topo {
	case "testbed":
		g, r := topology.PartialFatTree(topology.PaperTestbed())
		return g, r, nil
	case "tree":
		g, r := topology.SingleRootedTree(topology.SingleRootedTreeSpec{
			Pods: pods, RacksPerPod: racks, HostsPerRack: hosts,
			LinkCapacity: topology.Gbps(1),
		})
		return g, r, nil
	case "fattree":
		g, r := topology.FatTree(topology.FatTreeSpec{K: k, LinkCapacity: topology.Gbps(1)})
		return g, topology.NewCachedRouting(r), nil
	case "bcube":
		g, r := topology.BCube(topology.BCubeSpec{N: n, K: k, LinkCapacity: topology.Gbps(1)})
		return g, topology.NewCachedRouting(r), nil
	case "ficonn":
		g, r := topology.FiConn(topology.FiConnSpec{N: n, K: k, LinkCapacity: topology.Gbps(1)})
		return g, topology.NewCachedRouting(r), nil
	}
	return nil, nil, fmt.Errorf("unknown topology %q", topo)
}

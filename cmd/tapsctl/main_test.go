package main

import "testing"

func TestBuildTopology(t *testing.T) {
	cases := []struct {
		topo  string
		hosts int
	}{
		{"testbed", 8},
		{"tree", 4 * 4 * 10},
		{"fattree", 16},  // k=4
		{"bcube", 4 * 4}, // n=4, k=1: n^(k+1)
	}
	for _, c := range cases {
		g, r, err := buildTopology(c.topo, 4, 4, 10, func() int {
			if c.topo == "bcube" {
				return 1
			}
			return 4
		}(), 4)
		if err != nil {
			t.Fatalf("%s: %v", c.topo, err)
		}
		if len(g.Hosts()) != c.hosts {
			t.Errorf("%s: hosts = %d, want %d", c.topo, len(g.Hosts()), c.hosts)
		}
		if r == nil {
			t.Errorf("%s: nil routing", c.topo)
		}
	}
	if _, _, err := buildTopology("nope", 1, 1, 1, 1, 1); err == nil {
		t.Error("unknown topology must error")
	}
}

// Command tapsagent is a host-side TAPS endpoint for the tapsctl
// controller: it registers as a host, submits one task, executes the
// granted schedule for the flows it sends, and prints the outcomes.
//
// Flows are given as src:dst:bytes triples of host node IDs (list them
// with cmd/tapstopo):
//
//	tapsagent -controller 127.0.0.1:7474 -host 9 \
//	    -task 1 -deadline 50 -flows 9:14:125000,9:20:250000
//
// The agent only transmits the flows whose src equals its own -host; run
// one agent per sending host and submit the task from any of them (the
// controller broadcasts grants to all agents).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"taps/internal/netctl"
	"taps/internal/simtime"
	"taps/internal/topology"
	"taps/internal/workload"
)

func main() {
	var (
		controller = flag.String("controller", "127.0.0.1:7474", "controller address")
		host       = flag.Int("host", 0, "node ID of the host this agent runs on")
		name       = flag.String("name", "", "agent name (default host<ID>)")
		task       = flag.Int64("task", 0, "task ID to submit (0: register and wait only)")
		deadline   = flag.Float64("deadline", 40, "task deadline in virtual ms")
		flows      = flag.String("flows", "", "comma-separated src:dst:bytes triples")
		trace      = flag.String("trace", "", "submit a workload trace (JSON from workload.WriteJSON) instead of -task/-flows")
	)
	flag.Parse()
	if *name == "" {
		*name = fmt.Sprintf("host%d", *host)
	}

	agent, err := netctl.Dial(*controller, *name, topology.NodeID(*host))
	if err != nil {
		fatal(err)
	}
	defer agent.Close()

	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		tasks, err := workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		accepted, rejected, err := agent.SubmitTrace(tasks, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d tasks accepted, %d rejected; executing local flows...\n",
			accepted, rejected)
	} else if *task != 0 {
		infos, err := parseFlows(*flows, *task)
		if err != nil {
			fatal(err)
		}
		err = agent.SubmitTask(*task, simtime.FromMillis(*deadline), infos)
		switch {
		case errors.Is(err, netctl.ErrRejected):
			fmt.Printf("task %d REJECTED by the controller\n", *task)
			return
		case err != nil:
			fatal(err)
		}
		fmt.Printf("task %d accepted; executing local flows...\n", *task)
	}
	agent.WaitLocalFlows()
	for _, o := range agent.Outcomes() {
		status := "ON TIME"
		if !o.OnTime {
			status = "LATE"
		}
		fmt.Printf("flow %d finished at %.3f ms (deadline %.3f ms) %s\n",
			o.ID, simtime.ToMillis(o.Finish), simtime.ToMillis(o.Deadline), status)
	}
}

// parseFlows decodes src:dst:bytes triples; flow IDs are derived from the
// task ID and the flow index.
func parseFlows(s string, task int64) ([]netctl.FlowInfo, error) {
	if s == "" {
		return nil, errors.New("tapsagent: -flows is required with -task")
	}
	var out []netctl.FlowInfo
	for i, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("tapsagent: flow %q: want src:dst:bytes", part)
		}
		src, err1 := strconv.Atoi(fields[0])
		dst, err2 := strconv.Atoi(fields[1])
		size, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("tapsagent: flow %q: numeric fields required", part)
		}
		out = append(out, netctl.FlowInfo{
			ID:   uint64(task)<<16 | uint64(i),
			Src:  topology.NodeID(src),
			Dst:  topology.NodeID(dst),
			Size: size,
		})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tapsagent:", err)
	os.Exit(1)
}

package main

import (
	"strings"
	"testing"
)

func TestParseFlows(t *testing.T) {
	flows, err := parseFlows("1:2:1000,3:4:250000", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].Src != 1 || flows[0].Dst != 2 || flows[0].Size != 1000 {
		t.Fatalf("flow0 = %+v", flows[0])
	}
	if flows[1].Size != 250000 {
		t.Fatalf("flow1 = %+v", flows[1])
	}
	if flows[0].ID == flows[1].ID {
		t.Fatal("flow IDs must be distinct")
	}
	if flows[0].ID>>16 != 7 {
		t.Fatalf("flow ID must embed the task: %d", flows[0].ID)
	}
}

func TestParseFlowsErrors(t *testing.T) {
	for _, bad := range []string{"", "1:2", "a:b:c", "1:2:3:4"} {
		if _, err := parseFlows(bad, 1); err == nil {
			t.Errorf("parseFlows(%q) should fail", bad)
		}
	}
}

func TestParseFlowsErrorMentionsInput(t *testing.T) {
	_, err := parseFlows("x:y:z", 1)
	if err == nil || !strings.Contains(err.Error(), "x:y:z") {
		t.Fatalf("err = %v", err)
	}
}
